/**
 * @file
 * Ablation: heating constants k1/k2. The paper assumes rates one order
 * of magnitude better than Honeywell's measured ~2 quanta per shuttle
 * (Section VII-B, k1=0.1, k2=0.01). This sweep shows how application
 * fidelity degrades if that projection is not met.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/export.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    // Heating constants are model knobs: one shared L6 cap=22 context
    // serves all ten points. The k1/k2 pairs are literals (0.1x to 10x
    // the paper's projection) rather than computed scales, so the
    // declarative reproduction (examples/sweeps/ablation_heating.sweep)
    // parses the exact same doubles.
    SweepEngine engine;
    std::vector<SweepJob> jobs;
    const std::pair<double, double> rates[] = {{0.01, 0.001},
                                               {0.05, 0.005},
                                               {0.1, 0.01},
                                               {0.2, 0.02},
                                               {1.0, 0.1}};
    for (const char *app : {"qft", "supremacy"}) {
        const auto native = engine.nativeBenchmark(app);
        for (const auto &[k1, k2] : rates) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = DesignPoint::linear(6, 22);
            job.design.hw.heatingK1 = k1;
            job.design.hw.heatingK2 = k2;
            jobs.push_back(std::move(job));
        }
    }
    const auto points = engine.run(jobs);

    std::cout << "=== Ablation: heating constants (L6 cap=22, FM-GS) "
                 "===\n";
    TextTable table;
    table.addRow({"app", "k1", "k2", "fidelity", "max heat (quanta)"});
    for (const SweepPoint &p : points) {
        const RunResult &r = p.result;
        table.addRow({p.application, formatSig(p.design.hw.heatingK1, 3),
                      formatSig(p.design.hw.heatingK2, 3),
                      formatSci(r.fidelity(), 3),
                      formatSig(r.sim.maxChainEnergy, 4)});
    }
    std::cout << table.render();
    std::cout << "\nk1=1.0 corresponds to Honeywell-scale heating; the "
                 "paper's projected rates are the middle row.\n";

    // Raw series for external plotting and the golden check.
    writeTextFile(toCsv(points), "ablation_heating.csv");
    std::cout << "wrote ablation_heating.csv (" << points.size()
              << " rows)\n";
    return 0;
}
