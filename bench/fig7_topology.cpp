/**
 * @file
 * Reproduces Figure 7 (communication topology study): L6 vs G2x3 with
 * FM gates and GS reordering across capacities 14-34.
 *
 *  7a-7f: per-application runtime and fidelity for both topologies
 *  7g: SquareRoot motional heating for both topologies
 */

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    const std::vector<std::string> apps{"adder", "bv", "supremacy",
                                        "qaoa", "qft", "squareroot"};
    const std::vector<int> caps = paperCapacities();

    // One engine for both topologies: each app is lowered once and the
    // two sweeps run on the shared worker pool.
    SweepEngine engine;
    const auto linear = sweepCapacity(engine, apps, caps, [](int cap) {
        return DesignPoint::linear(6, cap);
    });
    const auto grid = sweepCapacity(engine, apps, caps, [](int cap) {
        return DesignPoint::grid(2, 3, cap);
    });

    std::cout << "=== Figure 7: topology (FM, GS; L6 vs G2x3) ===\n\n";

    std::cout << "--- Fig 7a-7f: runtime (s), linear L6 ---\n"
              << seriesTable(linear, metricTimeSeconds, "L6 time[s]")
              << "\n--- Fig 7a-7f: runtime (s), grid G2x3 ---\n"
              << seriesTable(grid, metricTimeSeconds, "G2x3 time[s]")
              << "\n";

    std::cout << "--- Fig 7a-7f: fidelity, linear L6 ---\n"
              << seriesTable(linear, metricFidelity, "L6 fidelity", true)
              << "\n--- Fig 7a-7f: fidelity, grid G2x3 ---\n"
              << seriesTable(grid, metricFidelity, "G2x3 fidelity", true)
              << "\n";

    std::cout << "--- Fig 7g: SquareRoot motional heating (quanta) ---\n";
    TextTable table;
    std::vector<std::string> h{"topology"};
    for (int c : caps)
        h.push_back(std::to_string(c));
    table.addRow(h);
    auto row = [&](const char *label, const auto &points) {
        std::vector<std::string> cells{label};
        for (int c : caps)
            for (const SweepPoint &p : points)
                if (p.application == "squareroot" &&
                    p.design.trapCapacity == c)
                    cells.push_back(
                        formatSig(p.result.sim.maxChainEnergy, 4));
        table.addRow(cells);
    };
    row("linear", linear);
    row("grid", grid);
    std::cout << table.render() << "\n";

    // Headline ratio from the paper: grid/linear fidelity advantage for
    // SquareRoot (up to thousands of times).
    double best_ratio = 0;
    for (int c : caps) {
        double fl = 0;
        double fg = 0;
        for (const SweepPoint &p : linear)
            if (p.application == "squareroot" &&
                p.design.trapCapacity == c)
                fl = p.result.sim.logFidelity;
        for (const SweepPoint &p : grid)
            if (p.application == "squareroot" &&
                p.design.trapCapacity == c)
                fg = p.result.sim.logFidelity;
        best_ratio = std::max(best_ratio, fg - fl);
    }
    std::cout << "SquareRoot grid-vs-linear max fidelity advantage: e^"
              << formatSig(best_ratio, 4) << " = "
              << formatSci(std::exp(best_ratio), 3) << "x\n";

    // Raw series for external plotting.
    std::vector<SweepPoint> all = linear;
    all.insert(all.end(), grid.begin(), grid.end());
    writeTextFile(toCsv(all), "fig7_topology.csv");
    std::cout << "wrote fig7_topology.csv (" << all.size() << " rows)\n";
    return 0;
}
