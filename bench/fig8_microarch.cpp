/**
 * @file
 * Reproduces Figure 8 (microarchitecture study): the eight combinations
 * of two-qubit gate implementation {AM1, AM2, PM, FM} and chain
 * reordering method {GS, IS} on the L6 topology, capacity 14-34.
 * Prints one fidelity table and one runtime table per application, one
 * row per combination (the figure's eight curves).
 *
 * All 288 points are evaluated as one SweepEngine batch: every app is
 * lowered once, every capacity's L6 architecture is built once (the
 * eight combos per capacity share it), and the batch runs across the
 * worker pool. Results come back in job order, so the tables below
 * just walk the points in the same nested loop order.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "core/export.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    const std::vector<std::string> apps{"adder", "bv", "qaoa", "qft",
                                        "squareroot", "supremacy"};
    const std::vector<int> caps = paperCapacities();
    const std::vector<GateImpl> gates{GateImpl::AM1, GateImpl::AM2,
                                      GateImpl::FM, GateImpl::PM};
    const std::vector<ReorderMethod> reorders{ReorderMethod::GS,
                                              ReorderMethod::IS};

    SweepEngine engine;
    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * gates.size() * reorders.size() *
                 caps.size());
    for (const std::string &app : apps) {
        const auto native = engine.nativeBenchmark(app);
        for (GateImpl gate : gates) {
            for (ReorderMethod reorder : reorders) {
                for (int cap : caps) {
                    SweepJob job;
                    job.application = app;
                    job.native = native;
                    job.design =
                        DesignPoint::linear(6, cap, gate, reorder);
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    const auto points = engine.run(jobs);

    std::cout << "=== Figure 8: microarchitecture (L6), 8 combos ===\n";

    size_t at = 0;
    for (const std::string &app : apps) {
        TextTable fid;
        TextTable time;
        std::vector<std::string> header{"combo"};
        for (int c : caps)
            header.push_back(std::to_string(c));
        fid.addRow(header);
        time.addRow(header);

        for (GateImpl gate : gates) {
            for (ReorderMethod reorder : reorders) {
                std::vector<std::string> frow{gateImplName(gate) + "-" +
                                              reorderMethodName(reorder)};
                std::vector<std::string> trow = frow;
                for (size_t c = 0; c < caps.size(); ++c) {
                    const RunResult &r = points[at++].result;
                    frow.push_back(formatSci(r.fidelity(), 3));
                    trow.push_back(
                        formatSig(r.totalTime() / kSecondUs, 4));
                }
                fid.addRow(frow);
                time.addRow(trow);
            }
        }
        std::cout << "\n--- " << app << " fidelity ---\n" << fid.render();
        std::cout << "--- " << app << " time (s) ---\n" << time.render();
    }

    // Raw series for external plotting and the golden check.
    writeTextFile(toCsv(points), "fig8_microarch.csv");
    std::cout << "\nwrote fig8_microarch.csv (" << points.size()
              << " rows)\n";
    return 0;
}
