/**
 * @file
 * Reproduces Figure 8 (microarchitecture study): the eight combinations
 * of two-qubit gate implementation {AM1, AM2, PM, FM} and chain
 * reordering method {GS, IS} on the L6 topology, capacity 14-34.
 * Prints one fidelity table and one runtime table per application, one
 * row per combination (the figure's eight curves).
 */

#include <iostream>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    const std::vector<std::string> apps{"adder", "bv", "qaoa", "qft",
                                        "squareroot", "supremacy"};
    const std::vector<int> caps = paperCapacities();
    const std::vector<GateImpl> gates{GateImpl::AM1, GateImpl::AM2,
                                      GateImpl::FM, GateImpl::PM};
    const std::vector<ReorderMethod> reorders{ReorderMethod::GS,
                                              ReorderMethod::IS};

    std::cout << "=== Figure 8: microarchitecture (L6), 8 combos ===\n";

    for (const std::string &app : apps) {
        const Circuit circuit = makeBenchmark(app);

        TextTable fid;
        TextTable time;
        std::vector<std::string> header{"combo"};
        for (int c : caps)
            header.push_back(std::to_string(c));
        fid.addRow(header);
        time.addRow(header);

        for (GateImpl gate : gates) {
            for (ReorderMethod reorder : reorders) {
                std::vector<std::string> frow{gateImplName(gate) + "-" +
                                              reorderMethodName(reorder)};
                std::vector<std::string> trow = frow;
                for (int cap : caps) {
                    const DesignPoint dp =
                        DesignPoint::linear(6, cap, gate, reorder);
                    const RunResult r = runToolflow(circuit, dp);
                    frow.push_back(formatSci(r.fidelity(), 3));
                    trow.push_back(
                        formatSig(r.totalTime() / kSecondUs, 4));
                }
                fid.addRow(frow);
                time.addRow(trow);
            }
        }
        std::cout << "\n--- " << app << " fidelity ---\n" << fid.render();
        std::cout << "--- " << app << " time (s) ---\n" << time.render();
    }
    return 0;
}
