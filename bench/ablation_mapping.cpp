/**
 * @file
 * Ablation: initial mapping policy. The paper's greedy heuristic packs
 * qubits into as few traps as possible (maximizing co-location); the
 * alternative spreads qubits evenly across all traps (shorter chains,
 * faster FM gates, more headroom, but more cross-trap gates). This
 * sweep quantifies that trade-off per application.
 */

#include <iostream>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    std::cout << "=== Ablation: mapping policy (L6 cap=22, FM-GS) ===\n";
    TextTable table;
    table.addRow({"app", "policy", "time (s)", "fidelity", "shuttles",
                  "reorder MS"});
    for (const char *app : {"qft", "qaoa", "supremacy", "squareroot",
                            "bv", "adder"}) {
        const Circuit circuit = makeBenchmark(app);
        for (MappingPolicy policy : {MappingPolicy::Packed,
                                     MappingPolicy::Balanced}) {
            const DesignPoint dp = DesignPoint::linear(6, 22);
            RunOptions options;
            options.mappingPolicy = policy;
            const RunResult r = runToolflow(circuit, dp, options);
            table.addRow(
                {app,
                 policy == MappingPolicy::Packed ? "packed" : "balanced",
                 formatSig(r.totalTime() / kSecondUs, 4),
                 formatSci(r.fidelity(), 3),
                 std::to_string(r.sim.counts.shuttles),
                 std::to_string(r.sim.counts.reorderMs)});
        }
    }
    std::cout << table.render();
    std::cout << "\nThe paper's packed policy maximizes co-location; "
                 "balanced placement shortens chains at the cost of "
                 "more shuttling.\n";
    return 0;
}
