/**
 * @file
 * Ablation: initial mapping policy. The paper's greedy heuristic packs
 * qubits into as few traps as possible (maximizing co-location); the
 * alternative spreads qubits evenly across all traps (shorter chains,
 * faster FM gates, more headroom, but more cross-trap gates). This
 * sweep quantifies that trade-off per application.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    // The mapping policy is a RunOptions knob: one shared L6 cap=22
    // context serves both policies for all six applications.
    SweepEngine engine;
    std::vector<SweepJob> jobs;
    for (const char *app : {"qft", "qaoa", "supremacy", "squareroot",
                            "bv", "adder"}) {
        const auto native = engine.nativeBenchmark(app);
        for (MappingPolicy policy : {MappingPolicy::Packed,
                                     MappingPolicy::Balanced}) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = DesignPoint::linear(6, 22);
            job.options.mappingPolicy = policy;
            jobs.push_back(std::move(job));
        }
    }
    const auto points = engine.run(jobs);

    std::cout << "=== Ablation: mapping policy (L6 cap=22, FM-GS) ===\n";
    TextTable table;
    table.addRow({"app", "policy", "time (s)", "fidelity", "shuttles",
                  "reorder MS"});
    // Points come back in job order: (app, policy) nested as above.
    size_t at = 0;
    for (const char *app : {"qft", "qaoa", "supremacy", "squareroot",
                            "bv", "adder"}) {
        for (MappingPolicy policy : {MappingPolicy::Packed,
                                     MappingPolicy::Balanced}) {
            const RunResult &r = points[at++].result;
            table.addRow(
                {app,
                 policy == MappingPolicy::Packed ? "packed" : "balanced",
                 formatSig(r.totalTime() / kSecondUs, 4),
                 formatSci(r.fidelity(), 3),
                 std::to_string(r.sim.counts.shuttles),
                 std::to_string(r.sim.counts.reorderMs)});
        }
    }
    std::cout << table.render();
    std::cout << "\nThe paper's packed policy maximizes co-location; "
                 "balanced placement shortens chains at the cost of "
                 "more shuttling.\n";
    return 0;
}
