/**
 * @file
 * Ablation: buffer slots per trap. The paper fixes two free slots per
 * trap for incoming shuttles (Section VI); this sweep quantifies the
 * sensitivity of runtime and fidelity to that choice, including the
 * eviction pressure that appears when no buffer is reserved.
 */

#include <iostream>

#include "common/table.hpp"
#include "core/export.hpp"
#include "core/sweep_engine.hpp"

int
main()
{
    using namespace qccd;

    // All 15 points share one L6 cap=22 context; buffer slots only
    // change the compiler's headroom, not the architecture.
    SweepEngine engine;
    std::vector<SweepJob> jobs;
    const std::vector<int> buffers{0, 1, 2, 4, 6};
    for (const char *app : {"qft", "squareroot", "supremacy"}) {
        const auto native = engine.nativeBenchmark(app);
        for (int buffer : buffers) {
            SweepJob job;
            job.application = app;
            job.native = native;
            job.design = DesignPoint::linear(6, 22);
            job.design.hw.bufferSlots = buffer;
            jobs.push_back(std::move(job));
        }
    }
    const auto points = engine.run(jobs);

    std::cout << "=== Ablation: buffer slots per trap (L6 cap=22, FM-GS) "
                 "===\n";
    TextTable table;
    table.addRow({"app", "buffer", "time (s)", "fidelity", "evictions",
                  "shuttles"});
    for (const SweepPoint &p : points) {
        const RunResult &r = p.result;
        table.addRow({p.application,
                      std::to_string(p.design.hw.bufferSlots),
                      formatSig(r.totalTime() / kSecondUs, 4),
                      formatSci(r.fidelity(), 3),
                      std::to_string(r.sim.counts.evictions),
                      std::to_string(r.sim.counts.shuttles)});
    }
    std::cout << table.render();

    // Raw series for external plotting and the golden check.
    writeTextFile(toCsv(points), "ablation_buffer.csv");
    std::cout << "\nwrote ablation_buffer.csv (" << points.size()
              << " rows)\n";
    return 0;
}
