/**
 * @file
 * Ablation: buffer slots per trap. The paper fixes two free slots per
 * trap for incoming shuttles (Section VI); this sweep quantifies the
 * sensitivity of runtime and fidelity to that choice, including the
 * eviction pressure that appears when no buffer is reserved.
 */

#include <iostream>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    std::cout << "=== Ablation: buffer slots per trap (L6 cap=22, FM-GS) "
                 "===\n";
    TextTable table;
    table.addRow({"app", "buffer", "time (s)", "fidelity", "evictions",
                  "shuttles"});
    for (const char *app : {"qft", "squareroot", "supremacy"}) {
        const Circuit circuit = makeBenchmark(app);
        for (int buffer : {0, 1, 2, 4, 6}) {
            DesignPoint dp = DesignPoint::linear(6, 22);
            dp.hw.bufferSlots = buffer;
            const RunResult r = runToolflow(circuit, dp);
            table.addRow({app, std::to_string(buffer),
                          formatSig(r.totalTime() / kSecondUs, 4),
                          formatSci(r.fidelity(), 3),
                          std::to_string(r.sim.counts.evictions),
                          std::to_string(r.sim.counts.shuttles)});
        }
    }
    std::cout << table.render();
    return 0;
}
