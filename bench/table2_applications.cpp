/**
 * @file
 * Reproduces Table II: the application suite with qubit counts,
 * two-qubit gate counts (in the native MS basis, as the paper counts
 * QFT), and communication-pattern labels derived from the interaction
 * histogram. Paper targets are printed alongside for comparison.
 */

#include <iostream>

#include "circuit/stats.hpp"
#include "common/table.hpp"
#include "core/sweep_engine.hpp"

namespace
{

struct PaperRow
{
    const char *name;
    int qubits;
    int gates;
    const char *pattern;
};

constexpr PaperRow kPaper[] = {
    {"supremacy", 64, 560, "Nearest neighbor gates"},
    {"qaoa", 64, 1260, "Nearest neighbor gates"},
    {"squareroot", 78, 1028, "Short and long-range gates"},
    {"qft", 64, 4032, "All distances"},
    {"adder", 64, 545, "Short range gates"},
    {"bv", 64, 64, "Short and long-range gates"},
};

} // namespace

int
main()
{
    using namespace qccd;

    std::cout << "=== Table II: applications (generated vs paper) ===\n";
    TextTable table;
    table.addRow({"Application", "Qubits", "2Q gates (native)",
                  "Pattern (derived)", "Paper qubits", "Paper 2Q",
                  "Paper pattern"});
    // The engine's native-circuit cache does the generate + lower; the
    // same cache backs the sweep benches, so Table II reports exactly
    // the circuits the figure benches schedule.
    SweepEngine engine(1);
    for (const PaperRow &row : kPaper) {
        const CircuitStats s =
            computeStats(*engine.nativeBenchmark(row.name));
        table.addRow({row.name, std::to_string(s.numQubits),
                      std::to_string(s.twoQubitGates), s.patternLabel(),
                      std::to_string(row.qubits),
                      std::to_string(row.gates), row.pattern});
    }
    std::cout << table.render();
    std::cout << "\nNotes: QFT counts CPhase as 2 MS gates (the paper's "
                 "64*63 convention).\nSquareRoot/Adder counts differ "
                 "slightly from the paper's ScaffCC builds; the qubit\n"
                 "counts and communication patterns match (see "
                 "EXPERIMENTS.md).\n";
    return 0;
}
