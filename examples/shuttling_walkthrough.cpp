/**
 * @file
 * Walkthrough of the paper's Fig. 2d / Fig. 4 shuttling examples: a
 * single cross-trap gate is compiled and every primitive QCCD
 * instruction it expands into is printed, first on a two-trap device
 * (split / move / merge) and then on a three-trap linear device where
 * the shuttle passes *through* the middle trap (merge + chain reorder +
 * split at the intermediate, exactly Fig. 4's steps).
 */

#include <iostream>

#include "core/toolflow.hpp"
#include "sim/analysis.hpp"
#include "sim/isa.hpp"

namespace
{

using namespace qccd;

void
walkthrough(const char *title, int traps, QubitId a, QubitId b,
            int qubits)
{
    std::cout << "=== " << title << " ===\n";
    Circuit circuit(qubits, "walkthrough");
    for (QubitId q = 0; q < qubits; ++q)
        circuit.h(q); // pin the first-use placement to index order
    circuit.ms(a, b);

    const DesignPoint dp = DesignPoint::linear(traps, 6);
    const ScheduleResult result = runToolflowDetailed(circuit, dp);

    std::cout << "compiled executable ("
              << result.trace.size() << " primitives):\n"
              << writeIsa(result.trace) << "\n";
    std::cout << analyzeTrace(result.trace, dp.buildTopology()).report()
              << "\n";
}

} // namespace

int
main()
{
    // Fig. 2d: adjacent traps, one split/move/merge plus the gate.
    walkthrough("Fig. 2d: shuttle between adjacent traps", 2, 0, 4, 8);

    // Fig. 4: non-adjacent traps on a linear device; the ion merges
    // into the middle trap, the chain is reordered so the ion reaches
    // the far end, and it splits out again.
    walkthrough("Fig. 4: shuttle through an intermediate trap", 3, 0, 11,
                12);
    return 0;
}
