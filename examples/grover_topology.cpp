/**
 * @file
 * Domain scenario: topology co-design for Grover search (SquareRoot).
 *
 * Section IX-B's headline result: communication topology must match the
 * application. SquareRoot's irregular short/long-range pattern gains
 * orders of magnitude in fidelity on a grid versus a linear device,
 * while the linear device suffers from pass-through merges and splits
 * at intermediate traps (Fig. 4). This example reproduces that
 * comparison at the paper scale.
 */

#include <iostream>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    const Circuit app = makeSquareRoot(38, 1); // 78 qubits, Table II
    std::cout << "SquareRoot-78: linear L6 vs grid G2x3 (FM gates, GS "
                 "reordering)\n\n";

    TextTable table;
    table.addRow({"capacity", "topo", "time (s)", "fidelity",
                  "log-fidelity", "pass-throughs", "max heat (quanta)"});

    for (int cap : {16, 22, 28, 34}) {
        for (const char *spec : {"linear:6", "grid:2x3"}) {
            DesignPoint dp;
            dp.topologySpec = spec;
            dp.trapCapacity = cap;
            const RunResult r = runToolflow(app, dp);
            table.addRow(
                {std::to_string(cap), spec,
                 formatSig(r.totalTime() / kSecondUs, 4),
                 formatSci(r.fidelity(), 3),
                 formatSig(r.sim.logFidelity, 4),
                 std::to_string(r.sim.counts.trapPassThroughs),
                 formatSig(r.sim.maxChainEnergy, 4)});
        }
    }
    std::cout << table.render() << "\n";
    std::cout << "Expected shape (paper Fig. 7): the grid wins by orders "
                 "of magnitude for this application because it avoids "
                 "intermediate-trap merges and their heating.\n";
    return 0;
}
