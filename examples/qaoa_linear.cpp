/**
 * @file
 * Domain scenario: tuning a linear QCCD device for QAOA.
 *
 * The paper's headline recommendation for near-term workloads such as
 * QAOA (Section IX) is a linear topology with 15-25 ions per trap and a
 * gate implementation matched to the application's gate distances. This
 * example sweeps trap capacity and the four MS gate implementations for
 * the 64-qubit hardware-efficient QAOA ansatz and prints the best
 * configurations.
 */

#include <iostream>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "common/table.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    const Circuit app = makeQaoa(64, 10);
    const std::vector<int> capacities{14, 18, 22, 26, 30, 34};
    const std::vector<GateImpl> gates{GateImpl::AM1, GateImpl::AM2,
                                      GateImpl::PM, GateImpl::FM};

    std::cout << "QAOA-64 on a 6-trap linear QCCD device\n\n";

    TextTable table;
    table.addRow({"gate", "capacity", "time (s)", "fidelity",
                  "shuttles"});
    double best_fid = -1;
    std::string best_label;
    for (GateImpl gate : gates) {
        for (int cap : capacities) {
            const DesignPoint dp = DesignPoint::linear(6, cap, gate);
            const RunResult r = runToolflow(app, dp);
            table.addRow({gateImplName(gate), std::to_string(cap),
                          formatSig(r.totalTime() / kSecondUs, 4),
                          formatSci(r.fidelity(), 3),
                          std::to_string(r.sim.counts.shuttles)});
            if (r.fidelity() > best_fid) {
                best_fid = r.fidelity();
                best_label = dp.label();
            }
        }
    }
    std::cout << table.render() << "\n";
    std::cout << "best configuration: " << best_label << " (fidelity "
              << formatSci(best_fid, 3) << ")\n";
    std::cout << "Expected shape (paper Fig. 8): AM2 or PM lead, since "
                 "every QAOA gate is nearest-neighbour.\n";
    return 0;
}
