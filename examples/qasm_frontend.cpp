/**
 * @file
 * OpenQASM frontend example: load circuits from .qasm files (the
 * interface the paper uses to connect to Qiskit/Cirq/ScaffCC) and run
 * them through the toolflow.
 *
 * Usage: qasm_frontend [file.qasm ...]
 * With no arguments it loads the bundled bell.qasm and qft8.qasm.
 */

#include <filesystem>
#include <iostream>
#include <vector>

#include "circuit/qasm/parser.hpp"
#include "circuit/qasm/writer.hpp"
#include "circuit/stats.hpp"
#include "common/error.hpp"
#include "core/report.hpp"
#include "core/toolflow.hpp"

int
main(int argc, char **argv)
{
    using namespace qccd;

    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i)
        files.push_back(argv[i]);
    if (files.empty()) {
        // Bundled circuits live next to the binary.
        const std::filesystem::path base =
            std::filesystem::path(argv[0]).parent_path() / "circuits";
        files.push_back((base / "bell.qasm").string());
        files.push_back((base / "qft8.qasm").string());
    }

    DesignPoint design = DesignPoint::linear(2, 8);
    for (const std::string &file : files) {
        try {
            const Circuit circuit = qasm::parseFile(file);
            const CircuitStats stats = computeStats(circuit);
            std::cout << file << ": " << stats.numQubits << " qubits, "
                      << stats.twoQubitGates << " 2q gates, "
                      << stats.measurements << " measurements\n";
            const RunResult result = runToolflow(circuit, design);
            std::cout << "  "
                      << summarizeRun(circuit.name(), design, result)
                      << "\n";
            // Round-trip back out to demonstrate the writer.
            std::cout << "  re-emitted "
                      << qasm::write(circuit).size()
                      << " bytes of OpenQASM\n";
        } catch (const QccdError &err) {
            std::cerr << file << ": error: " << err.what() << "\n";
            return 1;
        }
    }
    return 0;
}
