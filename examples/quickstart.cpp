/**
 * @file
 * Quickstart: build a QCCD design point, run a benchmark through the
 * toolflow, and read out the application and device metrics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "benchgen/benchgen.hpp"
#include "circuit/stats.hpp"
#include "core/report.hpp"
#include "core/toolflow.hpp"

int
main()
{
    using namespace qccd;

    // 1. Pick an application. Generators for the paper's whole suite
    //    live in benchgen; any OpenQASM 2.0 file works too.
    const Circuit app = makeQft(32);
    const CircuitStats stats = computeStats(app);
    std::cout << "application: " << app.name() << " with "
              << stats.numQubits << " qubits, " << stats.twoQubitGates
              << " two-qubit gates (" << stats.patternLabel() << ")\n";

    // 2. Describe a candidate device: a Honeywell-style linear QCCD
    //    with 4 traps of 22 ions, FM gates and gate-based reordering.
    DesignPoint design = DesignPoint::linear(4, 22, GateImpl::FM,
                                             ReorderMethod::GS);

    // 3. Run the toolflow: map, route, schedule, and simulate with the
    //    paper's performance, heating and fidelity models.
    RunOptions options;
    options.decomposeRuntime = true;
    const RunResult result = runToolflow(app, design, options);

    // 4. Inspect the metrics.
    std::cout << summarizeRun(app.name(), design, result) << "\n";
    std::cout << "  runtime:        " << result.totalTime() / kSecondUs
              << " s\n";
    std::cout << "  compute share:  " << result.computeOnlyTime / kSecondUs
              << " s\n";
    std::cout << "  comm share:     "
              << result.communicationTime() / kSecondUs << " s\n";
    std::cout << "  app fidelity:   " << result.fidelity() << "\n";
    std::cout << "  max chain heat: " << result.sim.maxChainEnergy
              << " quanta\n";
    return 0;
}
