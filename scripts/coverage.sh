#!/usr/bin/env bash
# Line-coverage report for src/, with an enforced floor.
#
# Usage: scripts/coverage.sh [BUILD_DIR] [--min PCT] [--out DIR]
#
#   BUILD_DIR  tree configured with -DQCCD_COVERAGE=ON and already
#              exercised (run ctest first so .gcda files exist)
#   --min PCT  fail (exit 1) if total line coverage of src/ is below
#              PCT percent (default: 0, report only)
#   --out DIR  where the report lands (default: BUILD_DIR/coverage)
#
# Aggregation uses gcov's JSON intermediate format (GCC >= 9), so the
# only hard dependency beyond the compiler is python3. When lcov is
# installed an lcov tracefile (coverage.info) is emitted too, for
# genhtml and CI artifact consumers; the enforced number comes from the
# gcov path either way. The floor guards the *measured baseline*: it
# should track the value printed by this script, minus a small margin
# for compiler-version line-attribution drift (see .github/workflows).
set -euo pipefail

BUILD_DIR=build
MIN_PCT=0
OUT_DIR=""
while [[ $# -gt 0 ]]; do
    case $1 in
      --min) MIN_PCT=$2; shift 2 ;;
      --out) OUT_DIR=$2; shift 2 ;;
      *) BUILD_DIR=$1; shift ;;
    esac
done
OUT_DIR=${OUT_DIR:-$BUILD_DIR/coverage}

REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
if [[ ! -d "$BUILD_DIR" ]]; then
    echo "error: build dir '$BUILD_DIR' not found" >&2
    exit 1
fi
BUILD_DIR=$(cd "$BUILD_DIR" && pwd)

mapfile -t gcda < <(find "$BUILD_DIR" -name '*.gcda' | sort)
if [[ ${#gcda[@]} -eq 0 ]]; then
    echo "error: no .gcda files under $BUILD_DIR" >&2
    echo "  configure with -DQCCD_COVERAGE=ON and run ctest first" >&2
    exit 1
fi

mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# gcov drops one .gcov.json.gz per source next to its output; aggregate
# them for files under src/ (tests and benches measure the tests, not
# the product).
(cd "$scratch" && gcov --json-format --preserve-paths \
    "${gcda[@]}" > /dev/null 2> gcov.log) || {
    echo "error: gcov failed:" >&2
    cat "$scratch/gcov.log" >&2
    exit 1
}

python3 - "$scratch" "$REPO_DIR" "$OUT_DIR" <<'EOF'
import glob, gzip, json, os, sys

scratch, repo, out_dir = sys.argv[1:4]
prefix = os.path.join(repo, "src") + os.sep
per_file = {}
for path in glob.glob(os.path.join(scratch, "*.gcov.json.gz")):
    with gzip.open(path, "rt") as fh:
        data = json.load(fh)
    for f in data.get("files", []):
        name = os.path.normpath(
            os.path.join(data.get("current_working_directory", ""),
                         f["file"]))
        if not name.startswith(prefix):
            continue
        lines = per_file.setdefault(name, {})
        # The same source is measured by many test binaries: a line
        # counts as covered if any run executed it.
        for line in f["lines"]:
            no = line["line_number"]
            lines[no] = lines.get(no, 0) or (1 if line["count"] else 0)

rows = []
total = covered = 0
for name in sorted(per_file):
    lines = per_file[name]
    n, c = len(lines), sum(lines.values())
    if n == 0:
        continue  # header with no executable lines in any TU
    total += n
    covered += c
    rows.append((name[len(prefix):], c, n))

pct = 100.0 * covered / total if total else 0.0
with open(os.path.join(out_dir, "src_coverage.txt"), "w") as fh:
    for name, c, n in rows:
        fh.write(f"{100.0 * c / n:6.2f}%  {c:5}/{n:<5}  {name}\n")
    fh.write(f"\nTOTAL src/ line coverage: {pct:.2f}% "
             f"({covered}/{total} lines)\n")
print(f"TOTAL src/ line coverage: {pct:.2f}% ({covered}/{total} lines)")
with open(os.path.join(out_dir, "total_percent.txt"), "w") as fh:
    fh.write(f"{pct:.2f}\n")
EOF

# Optional lcov tracefile for genhtml / artifact consumers.
if command -v lcov > /dev/null 2>&1; then
    lcov --capture --directory "$BUILD_DIR" \
         --output-file "$OUT_DIR/coverage.info" > /dev/null 2>&1 &&
    lcov --extract "$OUT_DIR/coverage.info" "$REPO_DIR/src/*" \
         --output-file "$OUT_DIR/coverage.info" > /dev/null 2>&1 &&
    lcov --summary "$OUT_DIR/coverage.info" 2>&1 | sed 's/^/  lcov: /' ||
    echo "  (lcov capture failed; gcov summary above is authoritative)"
fi

echo "report: $OUT_DIR/src_coverage.txt"

pct=$(cat "$OUT_DIR/total_percent.txt")
if python3 -c "import sys; sys.exit(0 if float('$pct') < float('$MIN_PCT') else 1)"; then
    echo "FAIL: src/ line coverage $pct% is below the $MIN_PCT% floor" >&2
    exit 1
fi
echo "coverage floor ($MIN_PCT%) satisfied"
