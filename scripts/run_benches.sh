#!/usr/bin/env bash
# Run every bench executable and record the perf trajectory as
# BENCH_<name>.json files.
#
# Usage: scripts/run_benches.sh [BUILD_DIR] [OUT_DIR] [BENCH...]
#
#   BUILD_DIR  CMake build tree containing bench/ (default: build)
#   OUT_DIR    where BENCH_*.json and bench CSVs land (default: bench_results)
#   BENCH...   optional bench names to run (default: every executable)
#
# Each paper-figure bench gets a wrapper record with its wall time,
# exit code, and the sweep worker count (QCCD_JOBS or the core count),
# so the perf trajectory stays comparable across PRs and job settings;
# micro_models and search_convergence (google-benchmark) emit their
# native JSON reports, which downstream tooling can diff run-over-run.
# A BENCH_SUMMARY.json with every bench's wall time is written last.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench_results}
shift $(( $# > 2 ? 2 : $# )) || true
ONLY=("$@")

if [[ ! -d "$BUILD_DIR/bench" ]]; then
    echo "error: $BUILD_DIR/bench not found — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

mkdir -p "$OUT_DIR"
OUT_DIR=$(cd "$OUT_DIR" && pwd)

# The worker count the sweep engine will resolve (see SweepEngine):
# QCCD_JOBS when set, otherwise every core.
jobs=${QCCD_JOBS:-$(nproc 2>/dev/null || echo 1)}

# GNU date gives nanoseconds; BSD date prints a literal 'N' — fall
# back to whole seconds there rather than recording garbage.
now_ns() {
    local ns
    ns=$(date +%s%N)
    if [[ $ns == *[!0-9]* ]]; then
        ns=$(($(date +%s) * 1000000000))
    fi
    echo "$ns"
}

wanted() {
    [[ ${#ONLY[@]} -eq 0 ]] && return 0
    local name
    for name in "${ONLY[@]}"; do
        [[ "$name" == "$1" ]] && return 0
    done
    return 1
}

# Benches write scratch CSVs into their cwd; keep that out of the repo.
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

failures=0
summary_rows=()
matched=()
for exe in "$BUILD_DIR"/bench/*; do
    [[ -f "$exe" && -x "$exe" ]] || continue
    name=$(basename "$exe")
    wanted "$name" || continue
    matched+=("$name")
    abs_exe=$(cd "$(dirname "$exe")" && pwd)/$name
    stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

    if [[ "$name" == "micro_models" || "$name" == "search_convergence" ]]; then
        echo "== $name (google-benchmark) =="
        # Write to a temp file first so a crashed run can't leave a
        # truncated JSON record behind.
        if (cd "$scratch" && "$abs_exe" --benchmark_format=json \
                > "$scratch/BENCH_${name}.json"); then
            mv "$scratch/BENCH_${name}.json" "$OUT_DIR/BENCH_${name}.json"
            echo "   wrote BENCH_${name}.json"
        else
            echo "   FAILED" >&2
            failures=$((failures + 1))
        fi
        continue
    fi

    echo "== $name =="
    start_ns=$(now_ns)
    if (cd "$scratch" && "$abs_exe" > "$OUT_DIR/${name}.log" 2>&1); then
        exit_code=0
    else
        exit_code=$?
        failures=$((failures + 1))
        echo "   FAILED (exit $exit_code), see $OUT_DIR/${name}.log" >&2
    fi
    end_ns=$(now_ns)
    wall=$(awk "BEGIN { printf \"%.3f\", ($end_ns - $start_ns) / 1e9 }")

    cat > "$OUT_DIR/BENCH_${name}.json" <<EOF
{
  "bench": "$name",
  "exit_code": $exit_code,
  "wall_seconds": $wall,
  "jobs": $jobs,
  "timestamp_utc": "$stamp"
}
EOF
    summary_rows+=("    {\"bench\": \"$name\", \"wall_seconds\": $wall, \"exit_code\": $exit_code}")
    echo "   ${wall}s -> BENCH_${name}.json"
done

# A requested bench that matched nothing is an error, not a silently
# green empty run (a renamed bench must break the CI serial-reference
# step, not void it).
for name in "${ONLY[@]+"${ONLY[@]}"}"; do
    found=0
    for ran in "${matched[@]+"${matched[@]}"}"; do
        [[ "$ran" == "$name" ]] && found=1
    done
    if [[ $found -eq 0 ]]; then
        echo "error: requested bench '$name' not found in $BUILD_DIR/bench" >&2
        failures=$((failures + 1))
    fi
done

# Per-point toolflow latency (microseconds): the BM_ToolflowPoint
# real_time from the micro_models google-benchmark report, i.e. one
# shared-context design-point evaluation including the two-pass runtime
# decomposition. "null" when micro_models was not built or not run.
toolflow_point_us=null
if [[ -f "$OUT_DIR/BENCH_micro_models.json" ]]; then
    extracted=$(awk '
        /"name": "BM_ToolflowPoint"/ { found = 1 }
        found && /"time_unit"/ {
            gsub(/[",]/, ""); unit = $2
        }
        found && /"real_time"/ {
            gsub(/,/, ""); rt = $2
        }
        found && rt != "" && unit != "" {
            scale = 1
            if (unit == "ms") scale = 1000
            else if (unit == "s") scale = 1000000
            else if (unit == "ns") scale = 0.001
            printf "%.3f", rt * scale
            exit
        }' "$OUT_DIR/BENCH_micro_models.json")
    [[ -n "$extracted" ]] && toolflow_point_us=$extracted
fi

# Staged-evaluation delta counters from BM_SweepDelta: points evaluated
# vs. full schedules actually run on a model-knob-heavy sweep shape
# (the >= 2x fewer-full-schedules acceptance metric). "null" when
# micro_models was not built or not run.
sweep_delta_points=null
sweep_delta_full_schedules=null
sweep_delta_replays=null
if [[ -f "$OUT_DIR/BENCH_micro_models.json" ]]; then
    extract_counter() {
        awk -v key="\"$1\"" '
            /"name": "BM_SweepDelta"/ { found = 1 }
            found && $1 == key ":" {
                gsub(/,/, ""); printf "%.0f", $2; exit
            }' "$OUT_DIR/BENCH_micro_models.json"
    }
    for counter in points full_schedules replays; do
        extracted=$(extract_counter "$counter")
        [[ -n "$extracted" ]] && eval "sweep_delta_$counter=$extracted"
    done
fi

# Surrogate-search economics from BM_SearchConvergence: points really
# evaluated vs. the exhaustive space, the surrogate/simulator Spearman
# rank correlation, and whether the search found the exhaustive
# optimum. "null" when search_convergence was not built or not run.
search_points_evaluated=null
search_exhaustive_points=null
search_rank_correlation=null
search_found_optimum=null
if [[ -f "$OUT_DIR/BENCH_search_convergence.json" ]]; then
    extract_search_counter() {
        awk -v key="\"$1\"" -v fmt="$2" '
            /"name": "BM_SearchConvergence"/ { found = 1 }
            found && $1 == key ":" {
                gsub(/,/, ""); printf fmt, $2; exit
            }' "$OUT_DIR/BENCH_search_convergence.json"
    }
    for counter in points_evaluated exhaustive_points found_optimum; do
        extracted=$(extract_search_counter "search_$counter" "%.0f")
        [[ -n "$extracted" ]] && eval "search_$counter=$extracted"
    done
    extracted=$(extract_search_counter "search_rank_correlation" "%.4f")
    [[ -n "$extracted" ]] && search_rank_correlation=$extracted
fi

# One aggregate record so the per-bench wall-time trajectory can be
# diffed across PRs without opening every BENCH_*.json.
{
    echo "{"
    echo "  \"jobs\": $jobs,"
    echo "  \"toolflow_point_us\": $toolflow_point_us,"
    echo "  \"sweep_delta_points\": $sweep_delta_points,"
    echo "  \"sweep_delta_full_schedules\": $sweep_delta_full_schedules,"
    echo "  \"sweep_delta_replays\": $sweep_delta_replays,"
    echo "  \"search_points_evaluated\": $search_points_evaluated,"
    echo "  \"search_exhaustive_points\": $search_exhaustive_points,"
    echo "  \"search_rank_correlation\": $search_rank_correlation,"
    echo "  \"search_found_optimum\": $search_found_optimum,"
    echo "  \"timestamp_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"benches\": ["
    sep=""
    for row in "${summary_rows[@]+"${summary_rows[@]}"}"; do
        printf '%s%s' "$sep" "$row"
        sep=$',\n'
    done
    echo
    echo "  ]"
    echo "}"
} > "$OUT_DIR/BENCH_SUMMARY.json"

# Keep any figure CSVs the benches produced alongside the JSON records.
find "$scratch" -maxdepth 1 -name '*.csv' -exec cp {} "$OUT_DIR"/ \;

echo
echo "results in $OUT_DIR:"
ls "$OUT_DIR"/BENCH_*.json 2>/dev/null || true

exit "$failures"
