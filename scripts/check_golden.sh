#!/usr/bin/env bash
# Verify the figure/ablation pipelines still produce bit-identical
# metrics to the committed golden CSVs (golden/), through BOTH paths:
#
#   1. the compiled benches (bench/<name> writes <name>.csv), and
#   2. the declarative sweep specs (qccd_explore --sweep
#      examples/sweeps/<spec>.sweep writes <spec name>.csv),
#
# plus sharded spec runs whose concatenated outputs must reproduce the
# unsharded files byte-for-byte, and a cold+warm result-cache pass over
# the sensitivity sweep (the staged toolflow's replay-heavy best case).
# Any diff means a change altered the
# simulator's arithmetic or the export format — intended metric changes
# must regenerate the golden files in the same commit. Every golden CSV
# must be covered by at least one path; spec-only scenarios (e.g. the
# gate-fidelity sensitivity sweep) have no bench and are checked via
# their spec alone.
#
# Usage: scripts/check_golden.sh [BUILD_DIR]
#
#   BUILD_DIR  CMake build tree containing bench/ and src/qccd_explore
#              (default: build)
#
# The sweep engine's results are worker-count independent, so this
# check passes for any QCCD_JOBS setting.
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
GOLDEN_DIR="$REPO_DIR/golden"
SWEEP_DIR="$REPO_DIR/examples/sweeps"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
    echo "error: $BUILD_DIR/bench not found — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi
BENCH_DIR=$(cd "$BUILD_DIR/bench" && pwd)
EXPLORE=$(cd "$BUILD_DIR/src" && pwd)/qccd_explore
if [[ ! -x "$EXPLORE" ]]; then
    echo "error: $EXPLORE not found — build first" >&2
    exit 1
fi

# Goldens certify RELEASE output. The checked-contract layer must be
# compiled out of any binary whose bytes we compare — a checked build
# passing here would prove nothing about the shipping configuration
# (and a contract throw would masquerade as a metrics diff).
if "$EXPLORE" --build-info | grep -q 'checked-contracts=on'; then
    echo "error: $BUILD_DIR was configured with -DQCCD_CHECKED=ON;" >&2
    echo "  goldens must be validated against a release build" >&2
    exit 1
fi

# Goldens also certify COLD output: a cache-hit run proves only that
# the store replays what some earlier build computed, not that this
# build computes it. The binary must advertise its cache schema (so a
# layout change is visible here), and no committed spec may smuggle a
# "cache" option into the golden runs below.
if ! "$EXPLORE" --build-info | grep -q 'cache-schema='; then
    echo "error: $EXPLORE --build-info does not report cache-schema" >&2
    exit 1
fi
if grep -l '"cache"' "$SWEEP_DIR"/*.sweep 2> /dev/null; then
    echo "error: committed sweep specs must not enable the result" >&2
    echo "  cache — golden runs certify cold computation" >&2
    exit 1
fi

shopt -s nullglob
golden_files=("$GOLDEN_DIR"/*.csv)
if [[ ${#golden_files[@]} -eq 0 ]]; then
    echo "error: no golden CSVs found in $GOLDEN_DIR" >&2
    exit 1
fi

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

failures=0
covered=""

# --- Path 1: compiled benches ---------------------------------------
mkdir -p "$scratch/bench"
for golden_csv in "${golden_files[@]}"; do
    name=$(basename "$golden_csv" .csv)
    [[ -x "$BENCH_DIR/$name" ]] || continue
    echo "== bench $name =="
    if ! (cd "$scratch/bench" && "$BENCH_DIR/$name" > "$name.log" 2>&1); then
        echo "   FAILED to run (see $scratch/bench/$name.log)" >&2
        failures=$((failures + 1))
        continue
    fi
    if diff -u "$golden_csv" "$scratch/bench/$name.csv" \
            > "$scratch/bench/$name.diff"; then
        echo "   matches golden"
        covered="$covered $name"
    else
        echo "   METRICS DIFFER from golden/$name.csv:" >&2
        head -20 "$scratch/bench/$name.diff" >&2
        failures=$((failures + 1))
    fi
done

# --- Path 2: declarative sweep specs --------------------------------
mkdir -p "$scratch/spec"
for sweep in "$SWEEP_DIR"/*.sweep; do
    spec=$(basename "$sweep")
    echo "== sweep $spec =="
    if ! (cd "$scratch/spec" && "$EXPLORE" --sweep "$sweep" \
            > "$spec.log" 2>&1); then
        echo "   FAILED to run (see $scratch/spec/$spec.log)" >&2
        failures=$((failures + 1))
    fi
done
# Belt and braces for the cold-run rule: no spec run may have consulted
# a result store (the CLI prints a "cache:" stats line whenever one is
# open, so a hit-tainted golden run cannot pass silently).
if grep -l '^cache:' "$scratch/spec"/*.log 2> /dev/null; then
    echo "   GOLDEN spec run consulted a result cache" >&2
    failures=$((failures + 1))
fi
for spec_csv in "$scratch/spec"/*.csv; do
    name=$(basename "$spec_csv" .csv)
    if [[ ! -f "$GOLDEN_DIR/$name.csv" ]]; then
        echo "== $name.csv (spec output) ==" >&2
        echo "   NO golden/$name.csv — commit one" >&2
        failures=$((failures + 1))
        continue
    fi
    if diff -u "$GOLDEN_DIR/$name.csv" "$spec_csv" \
            > "$scratch/spec/$name.diff"; then
        echo "   spec-driven $name.csv matches golden"
        covered="$covered $name"
    else
        echo "   SPEC-DRIVEN $name.csv DIFFERS from golden:" >&2
        head -20 "$scratch/spec/$name.diff" >&2
        failures=$((failures + 1))
    fi
done

# --- Sharded spec run: concatenation must be byte-identical ---------
echo "== sweep fig6.sweep, shards 0/2 + 1/2 =="
mkdir -p "$scratch/shard"
if (cd "$scratch/shard" &&
        "$EXPLORE" --sweep "$SWEEP_DIR/fig6.sweep" --shard 0/2 \
            --out s0.csv > s0.log 2>&1 &&
        "$EXPLORE" --sweep "$SWEEP_DIR/fig6.sweep" --shard 1/2 \
            --out s1.csv > s1.log 2>&1 &&
        cat s0.csv s1.csv > union.csv &&
        cmp -s union.csv "$GOLDEN_DIR/fig6_trap_sizing.csv"); then
    echo "   shard union matches golden"
else
    echo "   SHARD UNION DIFFERS from golden/fig6_trap_sizing.csv" >&2
    failures=$((failures + 1))
fi

# --- Sharded run over the new topology families ---------------------
echo "== sweep topology_families.sweep, shards 0..2/3 =="
mkdir -p "$scratch/shard_topo"
if (cd "$scratch/shard_topo" &&
        "$EXPLORE" --sweep "$SWEEP_DIR/topology_families.sweep" \
            --shard 0/3 --out t0.csv > t0.log 2>&1 &&
        "$EXPLORE" --sweep "$SWEEP_DIR/topology_families.sweep" \
            --shard 1/3 --out t1.csv > t1.log 2>&1 &&
        "$EXPLORE" --sweep "$SWEEP_DIR/topology_families.sweep" \
            --shard 2/3 --out t2.csv > t2.log 2>&1 &&
        cat t0.csv t1.csv t2.csv > union.csv &&
        cmp -s union.csv "$GOLDEN_DIR/topology_families.csv"); then
    echo "   shard union matches golden"
else
    echo "   SHARD UNION DIFFERS from golden/topology_families.csv" >&2
    failures=$((failures + 1))
fi

# --- Warm-cache run through the staged path -------------------------
# The model-knob-only sensitivity sweep is the staged toolflow's best
# case (one schedule per gate/app group, every other point replayed)
# AND the result store's: cold with --cache, then warm from the same
# store, must both be byte-identical to the golden. This certifies
# replayed rows round-trip through the .qcache format unchanged.
echo "== sweep sensitivity_fidelity.sweep, cold + warm cache =="
mkdir -p "$scratch/warm"
if (cd "$scratch/warm" &&
        "$EXPLORE" --sweep "$SWEEP_DIR/sensitivity_fidelity.sweep" \
            --out cold.csv --cache warm.qcache > cold.log 2>&1 &&
        "$EXPLORE" --sweep "$SWEEP_DIR/sensitivity_fidelity.sweep" \
            --out warm.csv --cache warm.qcache > warm.log 2>&1 &&
        cmp -s cold.csv "$GOLDEN_DIR/sensitivity_fidelity.csv" &&
        cmp -s warm.csv "$GOLDEN_DIR/sensitivity_fidelity.csv" &&
        grep -q '^staged: ' cold.log &&
        grep -q 'hits=20' warm.log); then
    echo "   cold and warm cache runs match golden"
else
    echo "   WARM-CACHE RUN DIFFERS from golden/sensitivity_fidelity.csv" >&2
    failures=$((failures + 1))
fi

# --- Every golden must have been checked by some path ---------------
for golden_csv in "${golden_files[@]}"; do
    name=$(basename "$golden_csv" .csv)
    if [[ " $covered " != *" $name "* ]]; then
        echo "golden/$name.csv was not produced by any bench or sweep" >&2
        failures=$((failures + 1))
    fi
done

if [[ $failures -eq 0 ]]; then
    echo "all bench and spec-driven outputs match the committed golden metrics"
fi
exit "$failures"
