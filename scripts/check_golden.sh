#!/usr/bin/env bash
# Verify the figure benches still produce bit-identical metrics to the
# committed golden CSVs (golden/). Any diff means a change altered the
# simulator's arithmetic — intended metric changes must regenerate the
# golden files in the same commit.
#
# Usage: scripts/check_golden.sh [BUILD_DIR]
#
#   BUILD_DIR  CMake build tree containing bench/ (default: build)
#
# The sweep engine's results are worker-count independent, so this
# check passes for any QCCD_JOBS setting.
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
GOLDEN_DIR="$REPO_DIR/golden"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
    echo "error: $BUILD_DIR/bench not found — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi
BENCH_DIR=$(cd "$BUILD_DIR/bench" && pwd)

shopt -s nullglob
golden_files=("$GOLDEN_DIR"/*.csv)
if [[ ${#golden_files[@]} -eq 0 ]]; then
    echo "error: no golden CSVs found in $GOLDEN_DIR" >&2
    exit 1
fi

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

failures=0
for golden_csv in "${golden_files[@]}"; do
    name=$(basename "$golden_csv" .csv)
    echo "== $name =="
    if ! (cd "$scratch" && "$BENCH_DIR/$name" > "$name.log" 2>&1); then
        echo "   FAILED to run (see $scratch/$name.log)" >&2
        failures=$((failures + 1))
        continue
    fi
    if diff -u "$golden_csv" "$scratch/$name.csv" > "$scratch/$name.diff"; then
        echo "   matches golden"
    else
        echo "   METRICS DIFFER from golden/$name.csv:" >&2
        head -20 "$scratch/$name.diff" >&2
        failures=$((failures + 1))
    fi
done

if [[ $failures -eq 0 ]]; then
    echo "all figure bench outputs match the committed golden metrics"
fi
exit "$failures"
