#!/usr/bin/env bash
# Run clang-tidy over every first-party translation unit, mirroring the
# CI gate (findings are errors). Two ways to run it:
#
#   scripts/run_tidy.sh [BUILD_DIR]     # standalone, parallel
#   cmake -B build -S . -DQCCD_TIDY=ON  # per-compile, inside the build
#
# The standalone path needs a configured build dir with a compilation
# database (any configure of this tree when QCCD_TIDY=ON, or pass
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        TIDY="$candidate"
        break
    fi
done
if [ -z "$TIDY" ]; then
    echo "run_tidy.sh: no clang-tidy binary found on PATH" >&2
    echo "run_tidy.sh: install clang-tidy (any version >= 14)" >&2
    exit 3
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_tidy.sh: $BUILD_DIR/compile_commands.json missing;" >&2
    echo "  configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" >&2
    exit 3
fi

# First-party TUs only: the database also holds fetched GoogleTest
# sources when the FetchContent fallback was exercised.
mapfile -t sources < <(git ls-files 'src/*.cpp' 'tests/*.cpp' \
                                    'bench/*.cpp' 'examples/*.cpp')

echo "run_tidy.sh: $TIDY over ${#sources[@]} files"
printf '%s\n' "${sources[@]}" |
    xargs -P "$(nproc)" -n 4 \
        "$TIDY" -p "$BUILD_DIR" -warnings-as-errors='*' --quiet
echo "run_tidy.sh: clean"
