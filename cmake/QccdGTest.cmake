# Provide the GTest::gtest / GTest::gtest_main targets.
#
# Prefers an installed GoogleTest (find_package) so the build works
# fully offline; falls back to FetchContent when no package is found,
# so a clean online machine still builds without preinstalling
# anything. QCCD_FORCE_FETCH_GTEST=ON skips the package lookup to
# exercise the fallback path (used by one CI job).

if(NOT QCCD_FORCE_FETCH_GTEST)
    find_package(GTest QUIET)
endif()

if(NOT TARGET GTest::gtest_main)
    message(STATUS "System GoogleTest not found; fetching v1.14.0")
    include(FetchContent)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    # Match the parent project's runtime on MSVC-style toolchains.
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_Declare(
        googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
        URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
        DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    # The QCCD_TIDY gate covers first-party code only: clang-tidy must
    # not run over (or fail on) fetched third-party sources.
    set(qccd_saved_tidy "${CMAKE_CXX_CLANG_TIDY}")
    set(CMAKE_CXX_CLANG_TIDY "")
    FetchContent_MakeAvailable(googletest)
    set(CMAKE_CXX_CLANG_TIDY "${qccd_saved_tidy}")
    unset(qccd_saved_tidy)
endif()
